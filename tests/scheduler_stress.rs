//! Stress the long-lived scheduler: many submitter threads hammering ONE
//! shared worker pool with mixed queries (raw morsel jobs, relational
//! pipelines, VM runs with background JIT compiles), asserting liveness
//! (every join completes within a bound — no deadlock), accounting (no
//! lost jobs, morsels executed == morsels planned per query), and that the
//! background compile server keeps publishing under fire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adaptvm::parallel::{MorselPlan, Scheduler};
use adaptvm::relational::parallel::{q1_parallel_adaptive, q3_parallel, q6_parallel, ParallelOpts};
use adaptvm::relational::tpch;
use adaptvm::storage::DEFAULT_CHUNK;
use adaptvm::vm::{Strategy, VmConfig};

/// Liveness bound for any single join: generous (CI containers are slow,
/// possibly single-core), but finite — a deadlock fails the test instead
/// of hanging it.
const JOIN_BOUND: Duration = Duration::from_secs(120);

#[test]
fn eight_submitters_mixed_queries_no_deadlock_no_lost_jobs() {
    let scheduler = Scheduler::new(4);
    let submitters = 8;
    let rounds = 3;

    // Shared inputs, generated once.
    let t = tpch::lineitem(16_000, 99);
    let compact = tpch::CompactLineitem::from_table(&t);
    let li = tpch::lineitem_q3(12_000, 2_000, 99);
    let ord = tpch::orders(2_000, 99);
    let date = tpch::SHIPDATE_MAX / 2;
    let morsel_rows = 2_000;

    // Quiet references for result checking under contention.
    let q1_ref = tpch::q1_adaptive(&compact, DEFAULT_CHUNK);
    let q3_ref = tpch::q3_hash(
        &li,
        &ord,
        date,
        tpch::JoinStrategy::Fused,
        DEFAULT_CHUNK,
        true,
    )
    .unwrap();
    let q6_ref = tpch::q6_reference(&t, 1000);

    // Accounting: morsels planned across every query everyone submits.
    let planned = AtomicU64::new(0);

    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for submitter in 0..submitters {
            let scheduler = &scheduler;
            let (t, compact, li, ord) = (&t, &compact, &li, &ord);
            let (q1_ref, q3_ref) = (&q1_ref, &q3_ref);
            let planned = &planned;
            joins.push(s.spawn(move || {
                for round in 0..rounds {
                    let opts = ParallelOpts::new(4, morsel_rows).with_scheduler(scheduler);
                    match (submitter + round) % 4 {
                        // Raw morsel job through the async submit queue,
                        // joined with a bounded deadline.
                        0 => {
                            let rows = 10_000 + submitter * 512;
                            let plan = MorselPlan::new(rows, 256);
                            planned.fetch_add(plan.len() as u64, Ordering::Relaxed);
                            let expected_morsels = plan.len();
                            let handle = scheduler
                                .submit(
                                    plan,
                                    move |_, m| Ok::<usize, ()>(m.len),
                                    |parts, stats| (parts.iter().sum::<usize>(), stats),
                                )
                                .expect("scheduler accepts while alive");
                            let (total, stats) = handle
                                .join_deadline(JOIN_BOUND)
                                .expect("submit join exceeded its deadline (deadlock?)")
                                .unwrap();
                            assert_eq!(total, rows, "lost morsel output");
                            assert_eq!(
                                stats.executed.iter().sum::<u64>(),
                                expected_morsels as u64,
                                "morsels executed != planned for this query"
                            );
                        }
                        // Exact fixed-point Q1 under contention.
                        1 => {
                            let plan_len = MorselPlan::chunk_aligned(
                                compact.qty.len(),
                                morsel_rows,
                                DEFAULT_CHUNK,
                            )
                            .len();
                            planned.fetch_add(plan_len as u64, Ordering::Relaxed);
                            let rows = q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts).unwrap();
                            for (a, b) in rows.iter().zip(q1_ref.iter()) {
                                assert_eq!(
                                    a.sum_disc_price.to_bits(),
                                    b.sum_disc_price.to_bits(),
                                    "Q1 diverged under contention"
                                );
                            }
                        }
                        // Two-phase Q3 join (two scheduler queries: build + probe).
                        2 => {
                            let (rev, stats) = q3_parallel(
                                li,
                                ord,
                                date,
                                tpch::JoinStrategy::Fused,
                                DEFAULT_CHUNK,
                                true,
                                opts,
                            )
                            .unwrap();
                            assert_eq!(rev.to_bits(), q3_ref.to_bits(), "Q3 diverged");
                            planned.fetch_add(
                                (stats.build_morsels + stats.probe_morsels) as u64,
                                Ordering::Relaxed,
                            );
                            assert_eq!(
                                stats.build.executed.iter().sum::<u64>(),
                                stats.build_morsels as u64,
                                "build morsels executed != planned"
                            );
                            assert_eq!(
                                stats.probe.executed.iter().sum::<u64>(),
                                stats.probe_morsels as u64,
                                "probe morsels executed != planned"
                            );
                        }
                        // Q6 through the VM with *background* compiles on
                        // the scheduler's shared compile server.
                        _ => {
                            let config = VmConfig {
                                strategy: Strategy::Adaptive,
                                hot_threshold: 2,
                                async_compile: true,
                                ..VmConfig::default()
                            };
                            let (rev, report) = q6_parallel(t, 1000, config, opts).unwrap();
                            planned.fetch_add(report.morsels as u64, Ordering::Relaxed);
                            assert!(
                                (rev - q6_ref).abs() / q6_ref.abs().max(1.0) < 1e-9,
                                "Q6 diverged under contention: {rev} vs {q6_ref}"
                            );
                            assert_eq!(
                                report.per_worker_morsels.iter().sum::<u64>(),
                                report.morsels as u64,
                                "Q6 morsels executed != planned"
                            );
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().expect("submitter thread panicked");
        }
    });

    // Global accounting: nothing lost, nothing double-counted.
    let stats = scheduler.stats();
    assert_eq!(
        stats.queries_submitted, stats.queries_completed,
        "every accepted query must complete: {stats:?}"
    );
    assert_eq!(
        stats.morsels_executed,
        planned.load(Ordering::Relaxed),
        "morsels executed must equal morsels planned across all queries"
    );
    assert_eq!(scheduler.active_queries(), 0, "registry must drain");
}

/// Background compiles keep landing while the pool is saturated: after a
/// storm of async-compile Q6 runs, the scheduler's shared cache holds the
/// fragment and a final run injects from it without compiling.
#[test]
fn background_compiles_survive_saturation() {
    let scheduler = Scheduler::new(2);
    let t = tpch::lineitem(12_288, 5);
    let config = VmConfig {
        strategy: Strategy::Adaptive,
        hot_threshold: 2,
        async_compile: true,
        ..VmConfig::default()
    };
    let opts = ParallelOpts::new(2, 2 * DEFAULT_CHUNK).with_scheduler(&scheduler);
    let expected = tpch::q6_reference(&t, 1000);

    // Storm phase: concurrent submitters, all racing the same fragment
    // through the shared compile server (submit_unique dedups in flight).
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (scheduler, t, config) = (&scheduler, &t, config.clone());
            s.spawn(move || {
                for _ in 0..3 {
                    let opts = ParallelOpts::new(2, 2 * DEFAULT_CHUNK).with_scheduler(scheduler);
                    let (rev, _) = q6_parallel(t, 1000, config.clone(), opts).unwrap();
                    assert!((rev - expected).abs() / expected.abs().max(1.0) < 1e-9);
                }
            });
        }
    });

    // Wait (bounded) for the background compile to publish, then verify a
    // fresh run picks it up for free.
    let deadline = std::time::Instant::now() + JOIN_BOUND;
    while scheduler.cache().stats().entries == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert!(
        scheduler.cache().stats().entries > 0,
        "background compile must publish to the scheduler cache"
    );
    let (rev, report) = q6_parallel(&t, 1000, config, opts).unwrap();
    assert!((rev - expected).abs() / expected.abs().max(1.0) < 1e-9);
    assert!(
        report.trace_cache_hits > 0,
        "repeated fragment must hit the shared cache: {report:?}"
    );
}
