//! Memory-governed out-of-core joins: a build side that does **not** fit
//! its memory budget, grace-hash-spilled to disk runs and settled
//! partition by partition — with the output verified bit-identical to
//! the unconstrained in-memory join.
//!
//! Run with: `cargo run --release --example spill_join [rows]`
//!
//! Sweeps the budget from "everything fits" down to "every partition
//! spills (and recurses)", printing the [`SpillStats`] for each step:
//! partitions spilled, run-file traffic, recursion depth, and forced
//! builds.
//!
//! [`SpillStats`]: adaptvm::parallel::SpillStats

use std::time::Instant;

use adaptvm::parallel::MemoryBudget;
use adaptvm::relational::parallel::{parallel_hash_join, ParallelOpts};
use adaptvm::relational::spill::{parallel_hash_join_spill, INT_BUILD_ROW_BYTES};
use adaptvm::storage::Array;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(400_000);
    let distinct = (rows / 4).max(1) as i64;
    let workers = 4;
    let morsel_rows = 16 * 1024;

    println!("build side: {rows} rows over {distinct} distinct keys");
    let build_keys = Array::from(
        (0..rows as i64)
            .map(|i| (i * 7) % distinct)
            .collect::<Vec<_>>(),
    );
    let build_pays = Array::from((0..rows as i64).collect::<Vec<_>>());
    let probe_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 13) % (2 * distinct))
        .collect();

    // The unconstrained reference.
    let t0 = Instant::now();
    let (_, reference) = parallel_hash_join(
        &build_keys,
        &build_pays,
        &probe_keys,
        false,
        ParallelOpts::new(workers, morsel_rows),
    )
    .expect("in-memory join");
    let in_memory_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "in-memory join: {} output rows in {in_memory_ms:.1} ms\n",
        reference.indices.len()
    );

    let footprint = rows * INT_BUILD_ROW_BYTES;
    println!(
        "estimated build footprint: {:.1} MiB  ·  budget sweep:",
        footprint as f64 / (1024.0 * 1024.0)
    );
    println!(
        "{:>12} {:>9} {:>7} {:>11} {:>11} {:>6} {:>7} {:>9} {:>9}",
        "budget", "time", "spills", "written", "read", "depth", "forced", "identical", "vs mem"
    );
    for (label, limit) in [
        ("unlimited", usize::MAX),
        ("100%", footprint),
        ("50%", footprint / 2),
        ("12.5%", footprint / 8),
        ("1%", footprint / 100),
    ] {
        let budget = MemoryBudget::bytes(limit);
        let t0 = Instant::now();
        let (out, spill) = parallel_hash_join_spill(
            &build_keys,
            &build_pays,
            &probe_keys,
            false,
            ParallelOpts::new(workers, morsel_rows).with_budget(&budget),
        )
        .expect("spill join");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let identical = out.indices == reference.indices && out.payloads == reference.payloads;
        assert!(identical, "spilled output diverged at budget {label}");
        assert_eq!(budget.used(), 0, "budget must balance after the join");
        println!(
            "{:>12} {:>7.1}ms {:>7} {:>10.1}K {:>10.1}K {:>6} {:>7} {:>9} {:>8.2}x",
            label,
            ms,
            spill.partitions_spilled,
            spill.bytes_written as f64 / 1024.0,
            spill.bytes_read as f64 / 1024.0,
            spill.max_recursion_depth,
            spill.forced_builds,
            if identical { "yes" } else { "NO" },
            ms / in_memory_ms,
        );
    }
    println!("\nevery budgeted run is bit-identical to the in-memory join ✓");
}
