//! Morsel-driven parallel TPC-H: Q1 in all three engine styles and Q6
//! through the full adaptive VM, swept over worker counts.
//!
//! Run with: `cargo run --release --example parallel_tpch [rows]`
//!
//! Prints per-style wall times, parallel speedups, the work-stealing
//! dispatch stats, and the shared-JIT cache hits — and verifies that
//! every parallel result agrees with the single-threaded engine.

use std::time::Instant;

use adaptvm::relational::parallel::{
    q1_parallel_adaptive, q1_parallel_vectorized, q6_parallel, ParallelOpts,
};
use adaptvm::relational::tpch;
use adaptvm::storage::DEFAULT_CHUNK;
use adaptvm::vm::{Strategy, VmConfig};

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let workers_sweep = [1usize, 2, 4, 8];
    let morsel_rows = 16 * DEFAULT_CHUNK;

    println!("generating lineitem with {rows} rows…");
    let table = tpch::lineitem(rows, 42);
    let compact = tpch::CompactLineitem::from_table(&table);

    // Single-threaded baselines.
    let t0 = Instant::now();
    let q1_seq = tpch::q1_vectorized(&table, DEFAULT_CHUNK);
    let q1_seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let q1_adaptive_seq = tpch::q1_adaptive(&compact, DEFAULT_CHUNK);
    let q1_adaptive_seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("\n== parallel Q1 (vectorized), morsel = {morsel_rows} rows");
    println!("   sequential: {q1_seq_ms:8.2} ms");
    for workers in workers_sweep {
        let t0 = Instant::now();
        let rows = q1_parallel_vectorized(
            &table,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows,
            },
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(tpch::q1_results_match(&q1_seq, &rows), "diverged!");
        println!(
            "   {workers} worker(s): {ms:8.2} ms  (speedup {:.2}×)",
            q1_seq_ms / ms
        );
    }

    println!("\n== parallel Q1 (compact types + adaptive mix)");
    println!("   sequential: {q1_adaptive_seq_ms:8.2} ms");
    for workers in workers_sweep {
        let t0 = Instant::now();
        let rows = q1_parallel_adaptive(
            &compact,
            DEFAULT_CHUNK,
            ParallelOpts {
                workers,
                morsel_rows,
            },
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(tpch::q1_results_match(&q1_adaptive_seq, &rows), "diverged!");
        println!(
            "   {workers} worker(s): {ms:8.2} ms  (speedup {:.2}×)",
            q1_adaptive_seq_ms / ms
        );
    }

    let expected_q6 = tpch::q6_reference(&table, 1000);
    for (name, strategy) in [
        ("interpret", Strategy::Interpret),
        ("compiled", Strategy::CompiledPipeline),
        ("adaptive", Strategy::Adaptive),
    ] {
        println!("\n== parallel Q6 through the VM ({name})");
        for workers in workers_sweep {
            let config = VmConfig {
                strategy,
                ..VmConfig::default()
            };
            let t0 = Instant::now();
            let (rev, report) = q6_parallel(
                &table,
                1000,
                config,
                ParallelOpts {
                    workers,
                    morsel_rows,
                },
            )
            .expect("q6 runs");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(
                (rev - expected_q6).abs() / expected_q6.abs().max(1.0) < 1e-9,
                "diverged: {rev} vs {expected_q6}"
            );
            println!(
                "   {workers} worker(s): {ms:8.2} ms  morsels/worker {:?}  steals {}  jit-cache-hits {}",
                report.per_worker_morsels, report.steals, report.trace_cache_hits
            );
        }
    }

    println!("\nall parallel results agree with the single-threaded engine ✓");
}
