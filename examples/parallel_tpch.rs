//! Morsel-driven parallel TPC-H: Q1 in all three engine styles and Q6
//! through the full adaptive VM, swept over worker counts.
//!
//! Run with: `cargo run --release --example parallel_tpch [rows] [--scheduler]`
//!
//! Default mode spawns a scoped thread pool per run; `--scheduler` routes
//! every query through ONE long-lived worker pool (per worker count) with
//! a shared JIT cache, so repeat queries report `jit-cache-hits`.
//!
//! Prints per-style wall times, parallel speedups, the work-stealing
//! dispatch stats, and the shared-JIT cache hits — and verifies that
//! every parallel result agrees with the single-threaded engine. Worker
//! counts printed are the ones the executing pool actually has; real
//! speedups additionally need that many hardware cores (see the
//! `available cores` line — on a single-core container every sweep
//! degenerates to ~1×).

use std::time::Instant;

use adaptvm::parallel::Scheduler;
use adaptvm::relational::parallel::{
    q1_parallel_adaptive, q1_parallel_vectorized, q6_parallel, ParallelOpts,
};
use adaptvm::relational::tpch;
use adaptvm::storage::DEFAULT_CHUNK;
use adaptvm::vm::{Strategy, VmConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scheduler_mode = args.iter().any(|a| a == "--scheduler");
    let rows: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let workers_sweep = [1usize, 2, 4, 8];
    let morsel_rows = 16 * DEFAULT_CHUNK;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("generating lineitem with {rows} rows…");
    println!(
        "mode: {}  ·  available cores: {cores}{}",
        if scheduler_mode {
            "long-lived scheduler"
        } else {
            "scoped pool per run"
        },
        if cores < 4 {
            "  (too few for real speedups — timings verify overhead only)"
        } else {
            ""
        }
    );
    let table = tpch::lineitem(rows, 42);
    let compact = tpch::CompactLineitem::from_table(&table);

    // One long-lived pool per swept worker count (scheduler mode).
    let pools: Vec<Scheduler> = if scheduler_mode {
        workers_sweep.iter().map(|&w| Scheduler::new(w)).collect()
    } else {
        Vec::new()
    };
    let opts_for = |i: usize, workers: usize| {
        if scheduler_mode {
            ParallelOpts::new(workers, morsel_rows).with_scheduler(&pools[i])
        } else {
            ParallelOpts::new(workers, morsel_rows)
        }
    };

    // Single-threaded baselines.
    let t0 = Instant::now();
    let q1_seq = tpch::q1_vectorized(&table, DEFAULT_CHUNK);
    let q1_seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let q1_adaptive_seq = tpch::q1_adaptive(&compact, DEFAULT_CHUNK);
    let q1_adaptive_seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("\n== parallel Q1 (vectorized), morsel = {morsel_rows} rows");
    println!("   sequential: {q1_seq_ms:8.2} ms");
    for (i, workers) in workers_sweep.into_iter().enumerate() {
        let opts = opts_for(i, workers);
        let pool_workers = opts.effective_workers();
        let t0 = Instant::now();
        let rows = q1_parallel_vectorized(&table, DEFAULT_CHUNK, opts).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(tpch::q1_results_match(&q1_seq, &rows), "diverged!");
        println!(
            "   {pool_workers} pool worker(s): {ms:8.2} ms  (speedup {:.2}×)",
            q1_seq_ms / ms
        );
    }

    println!("\n== parallel Q1 (compact types + adaptive mix)");
    println!("   sequential: {q1_adaptive_seq_ms:8.2} ms");
    for (i, workers) in workers_sweep.into_iter().enumerate() {
        let opts = opts_for(i, workers);
        let pool_workers = opts.effective_workers();
        let t0 = Instant::now();
        let rows = q1_parallel_adaptive(&compact, DEFAULT_CHUNK, opts).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(tpch::q1_results_match(&q1_adaptive_seq, &rows), "diverged!");
        println!(
            "   {pool_workers} pool worker(s): {ms:8.2} ms  (speedup {:.2}×)",
            q1_adaptive_seq_ms / ms
        );
    }

    let expected_q6 = tpch::q6_reference(&table, 1000);
    for (name, strategy) in [
        ("interpret", Strategy::Interpret),
        ("compiled", Strategy::CompiledPipeline),
        ("adaptive", Strategy::Adaptive),
    ] {
        println!("\n== parallel Q6 through the VM ({name})");
        for (i, workers) in workers_sweep.into_iter().enumerate() {
            let config = VmConfig {
                strategy,
                ..VmConfig::default()
            };
            let opts = opts_for(i, workers);
            let t0 = Instant::now();
            let (rev, report) = q6_parallel(&table, 1000, config, opts).expect("q6 runs");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(
                (rev - expected_q6).abs() / expected_q6.abs().max(1.0) < 1e-9,
                "diverged: {rev} vs {expected_q6}"
            );
            // `report.workers` is the pool the run actually executed on.
            println!(
                "   {} pool worker(s): {ms:8.2} ms  morsels/worker {:?}  steals {}  jit-cache-hits {}",
                report.workers, report.per_worker_morsels, report.steals, report.trace_cache_hits
            );
        }
    }

    if scheduler_mode {
        println!("\n== scheduler lifetime stats");
        for (pool, workers) in pools.iter().zip(workers_sweep) {
            let stats = pool.stats();
            println!(
                "   {workers}-worker pool: {} queries, {} morsels, cache entries {}, elastic morsel_rows {}",
                stats.queries_completed,
                stats.morsels_executed,
                pool.cache().stats().entries,
                pool.morsel_rows(),
            );
        }
    }

    println!("\nall parallel results agree with the single-threaded engine ✓");
}
