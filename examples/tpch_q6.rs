//! TPC-H Q6 end to end through the adaptive VM.
//!
//! The revenue query (`sum(price·discount)` under a 4-column predicate) is
//! expressed in the DSL, normalized, and executed three ways: vectorized
//! interpretation, HyPer-style whole-pipeline compilation, and the Fig. 1
//! adaptive state machine. The adaptive run starts interpreted and
//! switches to a fused trace once the loop is hot.
//!
//! ```sh
//! cargo run --release --example tpch_q6
//! ```

use adaptvm::prelude::*;
use adaptvm::relational::tpch;
use std::time::Instant;

fn main() {
    let rows = 2_000_000;
    println!("generating lineitem with {rows} rows …");
    let table = tpch::lineitem(rows, 42);
    let expected = tpch::q6_reference(&table, 1000);
    println!("reference revenue: {expected:.2}\n");

    println!(
        "{:<20} {:>12} {:>14} {:>12} {:>10}",
        "strategy", "wall ms", "compile ms", "traces", "rev ok"
    );
    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            hot_threshold: 8,
            cost_model: CostModel::default(),
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let program = tpch::q6_program(rows as i64, 1000);
        let t0 = Instant::now();
        let (out, report) = vm.run(&program, tpch::q6_buffers(&table)).expect("q6 runs");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let rev = out
            .output("revenue")
            .expect("written")
            .as_f64()
            .expect("f64")[0];
        let ok = (rev - expected).abs() / expected.abs().max(1.0) < 1e-9;
        println!(
            "{:<20} {:>12.2} {:>14.2} {:>12} {:>10}",
            format!("{strategy:?}"),
            wall,
            report.compile_ns_total as f64 / 1e6,
            report.injected_traces,
            ok
        );
    }

    println!("\nQ1 (three engine styles over the same data):");
    let t0 = Instant::now();
    let vec_rows = tpch::q1_vectorized(&table, 1024);
    let t_vec = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let fused_rows = tpch::q1_fused(&table);
    let t_fused = t0.elapsed().as_secs_f64() * 1e3;
    let compact = tpch::CompactLineitem::from_table(&table); // load-time narrowing
    let t0 = Instant::now();
    let adaptive_rows = tpch::q1_adaptive(&compact, 1024);
    let t_adaptive = t0.elapsed().as_secs_f64() * 1e3;
    println!("  vectorized (X100-style)      : {t_vec:>8.2} ms");
    println!("  fused (HyPer-style codegen)  : {t_fused:>8.2} ms");
    println!("  adaptive (compact + preagg)  : {t_adaptive:>8.2} ms");
    assert!(tpch::q1_results_match(&fused_rows, &vec_rows));
    assert!(tpch::q1_results_match(&fused_rows, &adaptive_rows));
    println!("  all three agree on {} groups ✓", fused_rows.len());
}
