//! One memory budget, every query shape: the same [`MemoryBudget`]
//! governing a grace-hash **join**, an out-of-core **group-by**, and an
//! external merge **sort** — all built on the operator-generic
//! [`SpillableOp`] protocol, all verified bit-identical to their
//! in-memory oracles at every budget.
//!
//! Run with: `cargo run --release --example spill_query [rows]`
//!
//! [`MemoryBudget`]: adaptvm::parallel::MemoryBudget
//! [`SpillableOp`]: adaptvm::parallel::SpillableOp

use std::time::Instant;

use adaptvm::parallel::{scratch_stats, MemoryBudget, SpillStats};
use adaptvm::relational::agg::aggregate_rows;
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::sort::{external_sort, sort_rows, SORT_ROW_BYTES};
use adaptvm::relational::spill::{
    parallel_hash_aggregate_spill, parallel_hash_join_spill, AGG_ROW_BYTES, INT_BUILD_ROW_BYTES,
};
use adaptvm::storage::{gen, Array};

fn print_row(op: &str, label: &str, ms: f64, s: &SpillStats) {
    println!(
        "{op:>9} {label:>10} {ms:>7.1}ms {:>7} {:>7} {:>10.1}K {:>10.1}K {:>6} {:>7}",
        s.partitions_spilled,
        s.probe_partitions_spilled,
        s.bytes_written as f64 / 1024.0,
        s.bytes_read as f64 / 1024.0,
        s.max_recursion_depth,
        s.forced_builds,
    );
}

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300_000);
    let workers = 4;
    let morsel_rows = 16 * 1024;
    let opts = ParallelOpts::new(workers, morsel_rows);

    println!("{rows} rows per operator, {workers} workers\n");
    println!(
        "{:>9} {:>10} {:>9} {:>7} {:>7} {:>11} {:>11} {:>6} {:>7}",
        "operator", "budget", "time", "spills", "pspills", "written", "read", "depth", "forced"
    );

    // Join: build side over rows/4 distinct keys, probe side twice as wide.
    let distinct = (rows / 4).max(1) as i64;
    let build_keys = Array::from(
        (0..rows as i64)
            .map(|i| (i * 7) % distinct)
            .collect::<Vec<_>>(),
    );
    let build_pays = Array::from((0..rows as i64).collect::<Vec<_>>());
    let probe_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 13) % (2 * distinct))
        .collect();
    let join_footprint = rows * INT_BUILD_ROW_BYTES;
    let (join_ref, _) =
        parallel_hash_join_spill(&build_keys, &build_pays, &probe_keys, false, opts)
            .expect("reference join");

    // Group-by: measurement table, value aggregated per group key.
    let table = gen::measurements(rows, (rows / 16).max(1), 42);
    let agg_footprint = rows * AGG_ROW_BYTES;
    let agg_ref = {
        let keys = table.column_by_name("group").unwrap().to_i64_vec().unwrap();
        let values = table.column_by_name("value").unwrap().as_f64().unwrap();
        aggregate_rows(&keys, values)
    };

    // Sort: shuffled keys with a row-id payload.
    let sort_keys: Vec<i64> = (0..rows as i64)
        .map(|i| (i * 2_654_435_761) % 1_000_003)
        .collect();
    let sort_pays: Vec<i64> = (0..rows as i64).collect();
    let sort_footprint = rows * SORT_ROW_BYTES;
    let sort_ref = sort_rows(&sort_keys, &sort_pays);

    for (label, pct) in [
        ("unlimited", usize::MAX),
        ("100%", 1),
        ("25%", 4),
        ("1%", 100),
        ("zero", 0),
    ] {
        let limit = |footprint: usize| match pct {
            usize::MAX => usize::MAX,
            0 => 0,
            d => footprint / d,
        };

        let budget = MemoryBudget::bytes(limit(join_footprint));
        let t0 = Instant::now();
        let (out, spill) = parallel_hash_join_spill(
            &build_keys,
            &build_pays,
            &probe_keys,
            false,
            opts.with_budget(&budget),
        )
        .expect("spill join");
        assert_eq!(out.indices, join_ref.indices, "join diverged at {label}");
        assert_eq!(out.payloads, join_ref.payloads, "join diverged at {label}");
        assert_eq!(budget.used(), 0, "join budget must balance");
        print_row("join", label, t0.elapsed().as_secs_f64() * 1e3, &spill);

        let budget = MemoryBudget::bytes(limit(agg_footprint));
        let t0 = Instant::now();
        let (groups, spill) =
            parallel_hash_aggregate_spill(&table, "group", "value", opts.with_budget(&budget))
                .expect("spill aggregate");
        assert_eq!(groups, agg_ref, "group-by diverged at {label}");
        assert_eq!(budget.used(), 0, "group-by budget must balance");
        print_row("group-by", label, t0.elapsed().as_secs_f64() * 1e3, &spill);

        let budget = MemoryBudget::bytes(limit(sort_footprint));
        let t0 = Instant::now();
        let (sorted, spill) = external_sort(&sort_keys, &sort_pays, opts.with_budget(&budget))
            .expect("external sort");
        assert_eq!(sorted, sort_ref, "sort diverged at {label}");
        assert_eq!(budget.used(), 0, "sort budget must balance");
        print_row("sort", label, t0.elapsed().as_secs_f64() * 1e3, &spill);
    }

    let scratch = scratch_stats();
    println!(
        "\nscratch arenas: {} created, {} reused across every settle pass",
        scratch.created, scratch.reused
    );
    println!("every budgeted run is bit-identical to its in-memory oracle ✓");
}
