//! The admission-controlled query serving layer, end to end: one
//! `QueryService` fronting a shared worker pool, fed concurrent TPC-H
//! queries in three priority classes.
//!
//! Run with: `cargo run --release --example serve [workers]`
//!
//! Four client threads fire interleaved queries — interactive Q6 (through
//! the full adaptive VM, JIT shared across queries), normal Q1, and batch
//! Q3 joins — through bounded per-priority queues with weighted-fair
//! dispatch. One query is cancelled mid-flight and one carries a deadline
//! on purpose, to show both abort paths. At the end the per-priority
//! telemetry table prints and the service drains gracefully.
//!
//! Multi-tenant mode: `cargo run --release --example serve -- --tenants N
//! [workers]` registers N tenants, makes the last one flood the service
//! open-loop while the others run closed-loop TPC-H Q1, then prints the
//! full `/metrics`-style exposition (`render_text`) and the isolation
//! outcome: the flooder absorbs every rejection, the paying tenants none.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use adaptvm::parallel::serve::{
    render_text, Priority, QueryService, ServeConfig, SubmitOpts, TenantQuota, TenantRegistry,
};
use adaptvm::parallel::{MorselPlan, QueryError};
use adaptvm::relational::parallel::{q1_parallel_adaptive, q3_parallel, q6_parallel, ParallelOpts};
use adaptvm::relational::tpch;
use adaptvm::storage::DEFAULT_CHUNK;
use adaptvm::vm::{Strategy, VmConfig};

/// `--tenants N` mode: N tenants on one service, the last one flooding.
fn tenants_demo(workers: usize, n: usize) {
    let n = n.max(2);
    println!(
        "multi-tenant serving demo: {n} tenants ({} paying + 1 flooder), {workers} workers",
        n - 1
    );

    println!("generating TPC-H inputs…");
    let lineitem = tpch::lineitem(100_000, 42);
    let compact = tpch::CompactLineitem::from_table(&lineitem);
    let q1_ref = tpch::q1_adaptive(&compact, DEFAULT_CHUNK);

    let mut reg = TenantRegistry::new();
    let paying: Vec<_> = (1..n)
        .map(|i| reg.register(format!("tenant-{i}"), TenantQuota::new().with_weight(8)))
        .collect();
    let flood = reg.register(
        "flood",
        TenantQuota::new().with_weight(1).with_max_in_flight(1),
    );
    let service = QueryService::with_tenants(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_concurrent(workers.max(2))
            .with_queue_capacity(8)
            .with_elastic_concurrency(2 * workers.max(2)),
        reg,
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // The flooder: open-loop trivial Batch queries, refusals ignored.
        {
            let (service, stop) = (&service, &stop);
            s.spawn(move || {
                let mut handles = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(h) = service.try_submit(
                        SubmitOpts::batch().with_tenant(flood),
                        MorselPlan::new(50_000, 2_048),
                        |_, m| Ok::<usize, ()>(m.len),
                        |parts, _| parts.iter().sum::<usize>(),
                    ) {
                        handles.push(h);
                    }
                    if handles.len() > 64 {
                        for h in handles.drain(..) {
                            let _ = h.join();
                        }
                    }
                }
                for h in handles {
                    let _ = h.join();
                }
            });
        }
        // Paying tenants: closed-loop exact Q1, verified every time.
        for (i, &id) in paying.iter().enumerate() {
            let (service, stop) = (&service, &stop);
            let (compact, q1_ref) = (&compact, &q1_ref);
            let last = i == paying.len() - 1;
            s.spawn(move || {
                for _ in 0..6 {
                    let opts = ParallelOpts::new(0, 8 * DEFAULT_CHUNK)
                        .with_service(service, Priority::Interactive)
                        .with_tenant(id);
                    let rows = q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts)
                        .expect("paying tenants are never refused");
                    assert_eq!(rows.len(), q1_ref.len());
                }
                if last {
                    stop.store(true, Ordering::Relaxed);
                }
            });
        }
    });

    // The exposition endpoint's payload, verbatim.
    println!("\n── rendered metrics (serve::render_text) ──────────────────");
    print!("{}", render_text(&service.stats()));
    println!("────────────────────────────────────────────────────────────");

    // Isolation outcome.
    let stats = service.stats();
    let flood_stats = stats.tenant("flood").expect("registered");
    let flood_refused = flood_stats.rejected() + flood_stats.shed;
    let paying_refused: u64 = stats
        .tenants
        .iter()
        .filter(|t| t.name != "flood")
        .map(|t| t.rejected() + t.shed)
        .sum();
    println!(
        "\nisolation outcome: flooder submitted {}, refused {} ({:.1}%); \
         paying tenants refused {}",
        flood_stats.submitted,
        flood_refused,
        flood_stats.rejection_rate() * 100.0,
        paying_refused,
    );
    assert_eq!(paying_refused, 0, "paying tenants absorbed refusals");
    println!(
        "the flood absorbed every refusal, paying tenants none ✓ \
         (elastic limit grew {}×, shed level now {})",
        stats.grow_events, stats.shed_level,
    );

    let report = service.drain(Duration::from_secs(30));
    println!(
        "graceful drain: clean={} refused_queued={} cancelled_running={}",
        report.clean, report.refused_queued, report.cancelled_running
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tenants = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tenants" {
            tenants = it.next().and_then(|v| v.parse::<usize>().ok());
            if tenants.is_none() {
                eprintln!("usage: serve [--tenants N] [workers]");
                std::process::exit(2);
            }
        } else {
            positional.push(a.clone());
        }
    }
    let workers: usize = positional.first().and_then(|a| a.parse().ok()).unwrap_or(4);
    if let Some(n) = tenants {
        tenants_demo(workers, n);
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("serving layer demo: {workers} pool workers, {cores} cores available");

    println!("generating TPC-H inputs…");
    let lineitem = tpch::lineitem(200_000, 42);
    let compact = tpch::CompactLineitem::from_table(&lineitem);
    let li_q3 = tpch::lineitem_q3(150_000, 30_000, 42);
    let orders = tpch::orders(30_000, 42);
    let date = tpch::SHIPDATE_MAX / 2;

    let service = QueryService::new(
        ServeConfig::default()
            .with_workers(workers)
            .with_max_concurrent(workers.max(2))
            .with_queue_capacity(32),
    );

    // Reference answers for verification under concurrency.
    let q1_ref = tpch::q1_adaptive(&compact, DEFAULT_CHUNK);
    let q6_ref = tpch::q6_reference(&lineitem, 1000);

    println!("firing mixed-priority load from 4 client threads…");
    let wall = Instant::now();
    std::thread::scope(|s| {
        for client in 0..4usize {
            let service = &service;
            let (lineitem, compact, li_q3, orders) = (&lineitem, &compact, &li_q3, &orders);
            let (q1_ref, q6_ref) = (&q1_ref, &q6_ref);
            s.spawn(move || {
                for round in 0..3usize {
                    match (client + round) % 3 {
                        // Interactive: Q6 through the adaptive VM.
                        0 => {
                            let opts = ParallelOpts::new(0, 4 * DEFAULT_CHUNK)
                                .with_service(service, Priority::Interactive);
                            let config = VmConfig {
                                strategy: Strategy::Adaptive,
                                hot_threshold: 3,
                                ..VmConfig::default()
                            };
                            let (rev, _) =
                                q6_parallel(lineitem, 1000, config, opts).expect("interactive Q6");
                            assert!((rev - q6_ref).abs() / q6_ref.abs().max(1.0) < 1e-9);
                        }
                        // Normal: exact fixed-point Q1.
                        1 => {
                            let opts = ParallelOpts::new(0, 8 * DEFAULT_CHUNK)
                                .with_service(service, Priority::Normal);
                            let rows = q1_parallel_adaptive(compact, DEFAULT_CHUNK, opts)
                                .expect("normal Q1");
                            assert_eq!(rows.len(), q1_ref.len());
                        }
                        // Batch: the Q3 join.
                        _ => {
                            let opts = ParallelOpts::new(0, 8 * DEFAULT_CHUNK)
                                .with_service(service, Priority::Batch);
                            let (rev, _) = q3_parallel(
                                li_q3,
                                orders,
                                date,
                                tpch::JoinStrategy::Fused,
                                DEFAULT_CHUNK,
                                true,
                                opts,
                            )
                            .expect("batch Q3");
                            assert!(rev.is_finite());
                        }
                    }
                }
            });
        }

        // Meanwhile: one cancelled query and one doomed deadline, on the
        // async submission path.
        let cancelled = service
            .try_submit(
                SubmitOpts::batch(),
                MorselPlan::new(500_000, 64),
                |_, m| {
                    std::thread::sleep(Duration::from_micros(200));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(5));
        cancelled.cancel();
        match cancelled.join() {
            Err(QueryError::Cancelled) => println!("  · cancelled query aborted cooperatively ✓"),
            other => println!("  · unexpected cancel outcome: {other:?}"),
        }
        let doomed = service
            .try_submit(
                SubmitOpts::batch().with_deadline(Duration::from_millis(1)),
                MorselPlan::new(400_000, 64),
                |_, m| {
                    std::thread::sleep(Duration::from_micros(100));
                    Ok::<usize, ()>(m.len)
                },
                |parts, _| parts.len(),
            )
            .expect("admitted");
        match doomed.join() {
            Err(QueryError::DeadlineExceeded) => {
                println!("  · deadline query expired with a typed error ✓")
            }
            other => println!("  · unexpected deadline outcome: {other:?}"),
        }
    });
    println!(
        "all client queries verified against the single-threaded engine ✓  (wall {:.2} s)",
        wall.elapsed().as_secs_f64()
    );

    // Telemetry table.
    let stats = service.stats();
    println!("\nper-priority service telemetry:");
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "priority", "admitted", "complete", "rejected", "lat p50", "lat p99"
    );
    for p in Priority::ALL {
        let ps = stats.priority(p);
        let ms = |d: Option<Duration>| {
            d.map(|d| format!("{:.2} ms", d.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "  {:<12} {:>9} {:>9} {:>9} {:>10} {:>10}",
            p.name(),
            ps.admitted,
            ps.completed,
            ps.rejected(),
            ms(ps.latency.p50()),
            ms(ps.latency.p99()),
        );
    }
    println!(
        "  scheduler: {} queries, {} morsels, {} JIT cache entries",
        stats.scheduler.queries_completed,
        stats.scheduler.morsels_executed,
        service.scheduler().cache().stats().entries,
    );

    let report = service.drain(Duration::from_secs(30));
    println!(
        "\ngraceful drain: clean={} refused_queued={} cancelled_running={}",
        report.clean, report.refused_queued, report.cancelled_running
    );
}
