//! Micro-adaptivity in action (§III-C): the bandit policy converges to the
//! best filter flavor per selectivity regime, then re-converges after a
//! workload shift.
//!
//! ```sh
//! cargo run --release --example adaptive_filter
//! ```

use adaptvm::kernels::{filter_cmp, FilterFlavor, Operand};
use adaptvm::prelude::*;
use adaptvm::storage::gen;
use adaptvm::vm::adaptive::FlavorPolicy;
use std::time::Instant;

fn measure_flavors(data: &Array, threshold: i64) {
    println!("  per-flavor cost at this selectivity:");
    for flavor in FilterFlavor::ALL {
        let t0 = Instant::now();
        let mut matches = 0;
        for _ in 0..50 {
            let sel = filter_cmp(
                adaptvm::dsl::ScalarOp::Gt,
                &[Operand::Col(data), Operand::Const(Scalar::I64(threshold))],
                None,
                flavor,
            )
            .expect("filter kernel");
            matches = sel.len();
        }
        println!(
            "    {:<12} {:>9.1} µs/chunk   ({} of {} match)",
            flavor.name(),
            t0.elapsed().as_secs_f64() * 1e6 / 50.0,
            matches,
            data.len(),
        );
    }
}

fn main() {
    let chunk = 16 * 1024;
    let mut policy = BanditPolicy::epsilon_greedy(0.1, 7);

    for (phase, selectivity) in [("low (~1%)", 0.01), ("high (~99%)", 0.99)] {
        println!("=== phase: selectivity {phase} ===");
        let data = gen::signed_with_selectivity(chunk, selectivity, 42);
        measure_flavors(&data, 0);

        // Let the bandit explore this regime.
        for _ in 0..300 {
            let flavor = policy.filter_flavor("demo-filter");
            let t0 = Instant::now();
            let _ = filter_cmp(
                adaptvm::dsl::ScalarOp::Gt,
                &[Operand::Col(&data), Operand::Const(Scalar::I64(0))],
                None,
                flavor,
            )
            .expect("filter kernel");
            policy.feedback_filter("demo-filter", flavor, t0.elapsed().as_nanos() as u64, chunk);
        }
        println!(
            "  bandit converged to : {:?}",
            policy.best_filter("demo-filter").expect("explored")
        );
        println!(
            "  pulls per arm       : {:?} (selvec / bitmap / compute_all)\n",
            policy.filter_pulls("demo-filter").expect("explored")
        );
    }
    println!("The bandit re-converged after the selectivity shift — the\nVectorwise-style micro-adaptivity of §III-C.");
}
