//! Morsel-parallel partitioned hash joins: the Q3-style
//! `lineitem ⋈ orders` revenue query in all three probe strategies,
//! swept over worker counts, plus the adaptive join chain probed
//! morsel-parallel.
//!
//! Run with: `cargo run --release --example parallel_join [rows] [--scheduler]`
//!
//! Default mode spawns a scoped thread pool per run; `--scheduler` routes
//! every join through ONE long-lived worker pool per worker count.
//!
//! Prints per-strategy wall times and speedups, the two-phase
//! (build/probe) dispatch stats, and verifies that every parallel result
//! is bit-identical to the sequential engine (exact integer fixed-point
//! revenue — the strongest rung of the exactness ladder). Worker counts
//! printed are the executing pool's own; real speedups additionally need
//! that many hardware cores (see the `available cores` line — on a
//! single-core container every sweep degenerates to ~1×).

use std::time::Instant;

use adaptvm::parallel::Scheduler;
use adaptvm::relational::join::HashTable;
use adaptvm::relational::parallel::{q3_parallel, ParallelJoinChain, ParallelOpts};
use adaptvm::relational::tpch::{self, JoinStrategy};
use adaptvm::storage::{Array, DEFAULT_CHUNK};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scheduler_mode = args.iter().any(|a| a == "--scheduler");
    let rows: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let n_orders = (rows / 4).max(1);
    let workers_sweep = [1usize, 2, 4, 8];
    let morsel_rows = 16 * DEFAULT_CHUNK;
    let date = tpch::SHIPDATE_MAX / 2;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("generating lineitem ({rows} rows) ⋈ orders ({n_orders} rows)…");
    println!(
        "mode: {}  ·  available cores: {cores}{}",
        if scheduler_mode {
            "long-lived scheduler"
        } else {
            "scoped pool per run"
        },
        if cores < 4 {
            "  (too few for real speedups — timings verify overhead only)"
        } else {
            ""
        }
    );
    let lineitem = tpch::lineitem_q3(rows, n_orders, 42);
    let orders = tpch::orders(n_orders, 42);
    let reference = tpch::q3_reference(&lineitem, &orders, date);

    let pools: Vec<Scheduler> = if scheduler_mode {
        workers_sweep.iter().map(|&w| Scheduler::new(w)).collect()
    } else {
        Vec::new()
    };
    let opts_for = |i: usize, workers: usize| {
        if scheduler_mode {
            ParallelOpts::new(workers, morsel_rows).with_scheduler(&pools[i])
        } else {
            ParallelOpts::new(workers, morsel_rows)
        }
    };

    for (name, strategy) in [
        ("vectorized", JoinStrategy::Vectorized),
        ("fused", JoinStrategy::Fused),
        ("adaptive", JoinStrategy::Adaptive),
    ] {
        let t0 = Instant::now();
        let seq = tpch::q3_hash(&lineitem, &orders, date, strategy, DEFAULT_CHUNK, true)
            .expect("sequential q3");
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            (seq - reference).abs() / reference.abs().max(1.0) < 1e-9,
            "sequential {name} diverged from the reference"
        );
        println!("\n== parallel Q3 ({name}), morsel = {morsel_rows} rows");
        println!("   sequential: {seq_ms:8.2} ms  (revenue {seq:.2})");
        for (i, workers) in workers_sweep.into_iter().enumerate() {
            let opts = opts_for(i, workers);
            let pool_workers = opts.effective_workers();
            let t0 = Instant::now();
            let (rev, stats) = q3_parallel(
                &lineitem,
                &orders,
                date,
                strategy,
                DEFAULT_CHUNK,
                true,
                opts,
            )
            .expect("parallel q3");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(rev.to_bits(), seq.to_bits(), "diverged!");
            // `stats.probe.executed` has one slot per pool worker — the
            // pool the probe actually ran on.
            assert_eq!(stats.probe.executed.len(), pool_workers);
            println!(
                "   {pool_workers} pool worker(s): {ms:8.2} ms  (speedup {:.2}×)  build {}m/{}st  probe {}m/{}st",
                seq_ms / ms,
                stats.build_morsels,
                stats.build.steals,
                stats.probe_morsels,
                stats.probe.steals,
            );
        }
    }

    // The adaptive join chain, probed morsel-parallel: the selective join
    // (small build side) should lead after a few batches, with per-join
    // stats merged across morsels before every reorder decision.
    println!("\n== parallel adaptive join chain (wide ⋈ selective)");
    let build = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 3).collect::<Vec<_>>()),
        )
        .expect("integer build")
        .with_bloom()
    };
    let span = rows.min(200_000);
    let probes: Vec<i64> = (0..span as i64).map(|i| i % (span as i64 / 2)).collect();
    let keys = [probes.clone(), probes.clone()];
    for (i, workers) in workers_sweep.into_iter().enumerate() {
        let opts = opts_for(i, workers);
        let pool_workers = opts.effective_workers();
        let mut chain =
            ParallelJoinChain::new(vec![build(span as i64 / 2), build(span as i64 / 20)], 2);
        let t0 = Instant::now();
        let mut survivors = 0;
        for _ in 0..8 {
            survivors = chain.probe_batch(&keys, opts).unwrap().indices.len();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "   {pool_workers} pool worker(s): {ms:8.2} ms  order {:?}  reorders {}  survivors {survivors}",
            chain.order(),
            chain.reorders(),
        );
    }

    if scheduler_mode {
        println!("\n== scheduler lifetime stats");
        for (pool, workers) in pools.iter().zip(workers_sweep) {
            let stats = pool.stats();
            println!(
                "   {workers}-worker pool: {} queries, {} morsels",
                stats.queries_completed, stats.morsels_executed
            );
        }
    }

    println!("\nall parallel joins agree with the single-threaded engine ✓");
}
