//! Morsel-parallel partitioned hash joins: the Q3-style
//! `lineitem ⋈ orders` revenue query in all three probe strategies,
//! swept over worker counts, plus the adaptive join chain probed
//! morsel-parallel.
//!
//! Run with: `cargo run --release --example parallel_join [rows]`
//!
//! Prints per-strategy wall times and speedups, the two-phase
//! (build/probe) dispatch stats, and verifies that every parallel result
//! is bit-identical to the sequential engine (exact integer fixed-point
//! revenue — the strongest rung of the exactness ladder).

use std::time::Instant;

use adaptvm::relational::join::HashTable;
use adaptvm::relational::parallel::{q3_parallel, ParallelJoinChain, ParallelOpts};
use adaptvm::relational::tpch::{self, JoinStrategy};
use adaptvm::storage::{Array, DEFAULT_CHUNK};

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let n_orders = (rows / 4).max(1);
    let workers_sweep = [1usize, 2, 4, 8];
    let morsel_rows = 16 * DEFAULT_CHUNK;
    let date = tpch::SHIPDATE_MAX / 2;

    println!("generating lineitem ({rows} rows) ⋈ orders ({n_orders} rows)…");
    let lineitem = tpch::lineitem_q3(rows, n_orders, 42);
    let orders = tpch::orders(n_orders, 42);
    let reference = tpch::q3_reference(&lineitem, &orders, date);

    for (name, strategy) in [
        ("vectorized", JoinStrategy::Vectorized),
        ("fused", JoinStrategy::Fused),
        ("adaptive", JoinStrategy::Adaptive),
    ] {
        let t0 = Instant::now();
        let seq = tpch::q3_hash(&lineitem, &orders, date, strategy, DEFAULT_CHUNK, true)
            .expect("sequential q3");
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            (seq - reference).abs() / reference.abs().max(1.0) < 1e-9,
            "sequential {name} diverged from the reference"
        );
        println!("\n== parallel Q3 ({name}), morsel = {morsel_rows} rows");
        println!("   sequential: {seq_ms:8.2} ms  (revenue {seq:.2})");
        for workers in workers_sweep {
            let t0 = Instant::now();
            let (rev, stats) = q3_parallel(
                &lineitem,
                &orders,
                date,
                strategy,
                DEFAULT_CHUNK,
                true,
                ParallelOpts {
                    workers,
                    morsel_rows,
                },
            )
            .expect("parallel q3");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(rev.to_bits(), seq.to_bits(), "diverged!");
            println!(
                "   {workers} worker(s): {ms:8.2} ms  (speedup {:.2}×)  build {}m/{}st  probe {}m/{}st",
                seq_ms / ms,
                stats.build_morsels,
                stats.build.steals,
                stats.probe_morsels,
                stats.probe.steals,
            );
        }
    }

    // The adaptive join chain, probed morsel-parallel: the selective join
    // (small build side) should lead after a few batches, with per-join
    // stats merged across morsels before every reorder decision.
    println!("\n== parallel adaptive join chain (wide ⋈ selective)");
    let build = |n: i64| {
        let keys: Vec<i64> = (0..n).collect();
        HashTable::build(
            &Array::from(keys.clone()),
            &Array::from(keys.iter().map(|k| k * 3).collect::<Vec<_>>()),
        )
        .expect("integer build")
        .with_bloom()
    };
    let span = rows.min(200_000);
    let probes: Vec<i64> = (0..span as i64).map(|i| i % (span as i64 / 2)).collect();
    let keys = [probes.clone(), probes.clone()];
    for workers in workers_sweep {
        let mut chain =
            ParallelJoinChain::new(vec![build(span as i64 / 2), build(span as i64 / 20)], 2);
        let t0 = Instant::now();
        let mut survivors = 0;
        for _ in 0..8 {
            survivors = chain
                .probe_batch(
                    &keys,
                    ParallelOpts {
                        workers,
                        morsel_rows,
                    },
                )
                .indices
                .len();
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "   {workers} worker(s): {ms:8.2} ms  order {:?}  reorders {}  survivors {survivors}",
            chain.order(),
            chain.reorders(),
        );
    }

    println!("\nall parallel joins agree with the single-threaded engine ✓");
}
