//! Quickstart: run the paper's Fig. 2 program through every execution
//! strategy and watch the Fig. 1 state machine work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaptvm::dsl::printer::print_program;
use adaptvm::dsl::programs;
use adaptvm::prelude::*;

fn main() {
    // The exact program from Fig. 2 of the paper (limit raised so the
    // loop runs long enough to become "hot").
    let limit = 1 << 20;
    let program = programs::fig2_with_limit(limit);
    println!(
        "=== The DSL program (paper Fig. 2) ===\n{}",
        print_program(&program)
    );

    let n = (limit + 4096) as usize;
    let data: Vec<i64> = (0..n as i64).map(|i| (i % 9) - 4).collect();

    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            hot_threshold: 8,
            cost_model: CostModel::default(), // real compile latency
            ..VmConfig::default()
        };
        let vm = Vm::new(config);
        let buffers = Buffers::new().with_input("some_data", Array::from(data.clone()));
        let (out, report) = vm.run(&program, buffers).expect("program runs");

        let v_len = out.output("v").map_or(0, |a| a.len());
        let w_len = out.output("w").map_or(0, |a| a.len());
        println!("--- strategy: {strategy:?} ---");
        println!("  states        : {:?}", report.state_names());
        println!("  iterations    : {}", report.iterations);
        println!(
            "  traces        : {} injected, {} executions",
            report.injected_traces, report.trace_executions
        );
        println!(
            "  compile cost  : {:.2} ms",
            report.compile_ns_total as f64 / 1e6
        );
        println!("  wall time     : {:.2} ms", report.wall_ns as f64 / 1e6);
        println!("  |v| = {v_len}, |w| = {w_len}");
    }

    // Verify against the reference semantics.
    let (v_ref, w_ref) = programs::fig2_reference(&data, limit as usize);
    println!(
        "\nreference: |v| = {}, |w| = {} (all strategies matched: see tests)",
        v_ref.len(),
        w_ref.len()
    );
}
