//! Trace DSL queries end to end: compile workloads with the
//! [`adaptvm::relational::workload::Workload`] bridge, run them through
//! the admission-controlled [`QueryService`] with a live
//! [`Trace`](adaptvm::parallel::Trace), then print each merged
//! [`QueryProfile`](adaptvm::parallel::QueryProfile)'s human summary
//! and write a Chrome trace-event JSON to a temp path —
//! `chrome://tracing` or <https://ui.perfetto.dev> will load it.
//!
//! Two queries show the two tracing shapes:
//! * a **chunk-local scan** fanned out morsel-parallel
//!   ([`Workload::run_partitioned`]) — dozens of per-worker morsel
//!   spans with steal attribution,
//! * a **loop-shaped Q6-style revenue query** run as one VM task
//!   ([`Workload::run`]) — the adaptive VM's chunk loop goes hot and
//!   the profile records the JIT compile events.
//!
//! ```sh
//! cargo run --release --example trace_query
//! ```

use std::time::Instant;

use adaptvm::parallel::serve::{Priority, QueryService, ServeConfig};
use adaptvm::parallel::Trace;
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::workload::Workload;
use adaptvm::storage::{Array, ScalarType};
use adaptvm::vm::{Strategy, VmConfig};

/// A chunk-local program: every output is a pure function of its
/// morsel's slice, so per-morsel outputs concatenate in morsel order
/// and the run is worker-count independent by construction.
const SCAN_SRC: &str = "\
let gains = map (\\p d -> p * d) (read 0 price) (read 0 disc) in {
  write gains 0 (condense (filter (\\g -> g > 0.0) gains))
  write scaled 0 (map (\\q -> q * 2 + 1) (read 0 qty))
}
";

const SCAN_SCHEMA: &[(&str, ScalarType)] = &[
    ("price", ScalarType::F64),
    ("disc", ScalarType::F64),
    ("qty", ScalarType::I64),
    ("gains", ScalarType::F64),
    ("scaled", ScalarType::I64),
];

/// A Q6-style revenue query as an explicit chunked loop (the shape the
/// adaptive VM traces and JIT-compiles once it runs hot).
fn revenue_src(rows: usize) -> String {
    format!(
        "\
mut i
mut rev
i := 0
rev := 0.0
loop {{
  let p = read i price in {{
    let d = read i disc in {{
      let t = filter (\\a b -> b >= 0.01 && b <= 0.07 && a < 9000.0) p d in {{
        let r = map (\\a b -> a * b) t d in {{
          let s = fold sum 0.0 r in {{
            rev := rev + s
            i := i + len(p)
          }}
        }}
      }}
    }}
  }}
  if i >= {rows} then {{ break }}
}}
write revenue 0 rev
"
    )
}

const REVENUE_SCHEMA: &[(&str, ScalarType)] = &[
    ("price", ScalarType::F64),
    ("disc", ScalarType::F64),
    ("revenue", ScalarType::F64),
];

fn main() {
    let n = 1_000_000usize;
    let price = Array::from(
        (0..n as i64)
            .map(|i| (i % 10_000) as f64 + 1.0)
            .collect::<Vec<_>>(),
    );
    let disc = Array::from(
        (0..n as i64)
            .map(|i| ((i * 7) % 21 - 10) as f64 * 0.01)
            .collect::<Vec<_>>(),
    );
    let qty = Array::from((0..n as i64).map(|i| i % 50 + 1).collect::<Vec<_>>());

    let service = QueryService::new(ServeConfig::default().with_workers(4));
    let config = VmConfig {
        strategy: Strategy::Adaptive,
        hot_threshold: 2,
        ..VmConfig::default()
    };
    // Pin morsel == chunk: `SCAN_SRC` reads one chunk per run (no loop),
    // so each morsel must be exactly one chunk for the concatenated
    // outputs to cover every row — see `Workload::run_partitioned`.
    let mut opts = ParallelOpts::served(&service, Priority::Interactive);
    opts.morsel_rows = config.chunk_size;

    // Query 1: the chunk-local scan, morsel-parallel.
    let inputs: Vec<(&str, Array)> = vec![
        ("price", price.clone()),
        ("disc", disc.clone()),
        ("qty", qty),
    ];
    println!("== query 1: morsel-parallel scan ({n} rows)\n{SCAN_SRC}");
    let scan = Workload::compile(SCAN_SRC, SCAN_SCHEMA).expect("scan compiles");

    // Untraced oracle first: tracing must never change results.
    let (oracle, _) = scan
        .run_partitioned(n, &inputs, config.clone(), opts)
        .expect("untraced scan");
    let trace = Trace::new();
    let t0 = Instant::now();
    let (out, report) = scan
        .run_partitioned(n, &inputs, config.clone(), opts.with_trace(&trace))
        .expect("traced scan");
    let wall = t0.elapsed();
    assert_eq!(out, oracle, "traced scan must be bit-identical to untraced");
    let scan_profile = trace.profile();
    println!(
        "traced: {:.2} ms over {} morsels, bit-identical to the untraced oracle\n",
        wall.as_secs_f64() * 1e3,
        report.morsels,
    );
    println!("{}", scan_profile.summary());

    // Query 2: the loop-shaped revenue query — one VM task whose chunk
    // loop goes hot and JIT-compiles under the adaptive strategy.
    let src = revenue_src(n);
    println!("\n== query 2: adaptive VM revenue query ({n} rows, chunked loop)");
    let revenue = Workload::compile(&src, REVENUE_SCHEMA).expect("revenue compiles");
    let inputs: Vec<(&str, Array)> = vec![("price", price), ("disc", disc)];
    let trace = Trace::new();
    let t0 = Instant::now();
    let (out, report) = revenue
        .run(&inputs, config, opts.with_trace(&trace))
        .expect("traced revenue");
    let wall = t0.elapsed();
    let rev = out["revenue"].as_f64().and_then(|v| v.first().copied());
    let vm_profile = trace.profile();
    println!(
        "traced: {:.2} ms, revenue {:?}, {} JIT-injected traces\n",
        wall.as_secs_f64() * 1e3,
        rev,
        report.injected_traces,
    );
    println!("{}", vm_profile.summary());

    let json = scan_profile.chrome_trace();
    let path = std::env::temp_dir().join("adaptvm_trace_query.json");
    std::fs::write(&path, &json).expect("write chrome trace");
    println!(
        "\nwrote {} ({} bytes) — load it in chrome://tracing or https://ui.perfetto.dev",
        path.display(),
        json.len()
    );
    service.shutdown();
}
