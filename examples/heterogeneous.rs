//! Heterogeneous placement (§IV target 3): the same compiled trace priced
//! on CPU, integrated GPU, discrete GPU and FPGA profiles, and the adaptive
//! placement policy following the crossover.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use adaptvm::dsl::programs;
use adaptvm::hetsim::cost::price;
use adaptvm::hetsim::device::DeviceSpec;
use adaptvm::jit::compiler::{compile, CostModel};
use adaptvm::jit::pipeline::whole_pipeline_fragment;
use adaptvm::vm::placement::PlacementPolicy;
use std::collections::HashMap;

fn main() {
    // A 16-op arithmetic pipeline (heavy enough for devices to matter).
    let frag = whole_pipeline_fragment(&programs::map_chain(i64::MAX), &HashMap::new())
        .expect("map chain compiles");
    let trace = compile(frag, &CostModel::untimed());
    // Price as a compute-heavy 64-op kernel — enough arithmetic intensity
    // for the discrete GPU to amortize its PCIe transfers at the top end.
    let ops = trace.ir.op_count().max(64);

    let devices = vec![
        DeviceSpec::cpu(),
        DeviceSpec::integrated_gpu(),
        DeviceSpec::discrete_gpu(),
        DeviceSpec::fpga(),
    ];

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "rows", "cpu µs", "igpu µs", "dgpu µs", "fpga µs", "winner"
    );
    let mut policy = PlacementPolicy::new(devices.clone());
    for exp in 10..=26 {
        let n = 1usize << exp;
        let bytes = n * 8;
        let costs: Vec<f64> = devices
            .iter()
            .map(|d| price(d, n, ops, bytes, bytes).total_ns() as f64 / 1e3)
            .collect();
        let chosen = policy.choose(n, ops, bytes, bytes);
        println!(
            "2^{exp:<5} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            costs[0], costs[1], costs[2], costs[3], devices[chosen].name
        );
    }
    println!(
        "\ndecisions per device: {:?}",
        policy
            .devices()
            .iter()
            .map(|d| d.name.clone())
            .zip(policy.decisions().iter().copied())
            .collect::<Vec<_>>()
    );
    println!("Small inputs stay on the CPU (launch+transfer latency);\nlarge streaming inputs migrate to the discrete GPU — the §IV-3 crossover.");
}
