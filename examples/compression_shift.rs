//! Compressed execution under block-by-block scheme changes (§I, §III-C).
//!
//! A column is stored in blocks whose compression schemes differ; the scan
//! computes `SUM(x) WHERE x > t` three ways: always-decompress, always
//! compressed-execution, and the adaptive strategy that falls back on the
//! first encounter of each scheme and reuses its specialized plan after.
//!
//! ```sh
//! cargo run --release --example compression_shift
//! ```

use adaptvm::relational::compressed_exec::{sum_where_gt, ScanStrategy};
use adaptvm::storage::block::{Block, BlockColumn};
use adaptvm::storage::compress::Scheme;
use adaptvm::storage::gen;
use std::time::Instant;

fn build_column(blocks: usize, rows_per_block: usize) -> BlockColumn {
    let mut col = BlockColumn::new();
    for b in 0..blocks {
        // The scheme rotates block by block — the paper's adaptive
        // compression scenario.
        let (data, scheme) = match b % 4 {
            0 => (gen::runs_i64(rows_per_block, 64, b as u64), Scheme::Rle),
            1 => (
                gen::categorical_i64(rows_per_block, 5, b as u64),
                Scheme::Dict,
            ),
            2 => (
                gen::uniform_i64(rows_per_block, 1000, 1255, b as u64),
                Scheme::ForPack,
            ),
            _ => (
                gen::uniform_i64(rows_per_block, -1_000_000, 1_000_000, b as u64),
                Scheme::Plain,
            ),
        };
        col.push_block(Block::compress(&data, scheme).expect("codec supports data"));
    }
    col
}

fn main() {
    let col = build_column(400, 4096);
    let raw_bytes = col.rows() * 8;
    println!(
        "column: {} rows in {} blocks, {} scheme changes, {:.1}% of raw size\n",
        col.rows(),
        col.blocks().len(),
        col.scheme_changes().len() - 1,
        col.compressed_size() as f64 / raw_bytes as f64 * 100.0
    );

    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>12} {:>14}",
        "strategy", "wall ms", "fast blocks", "decompressed", "plans", "sum"
    );
    for (name, strategy) in [
        ("decompress", ScanStrategy::Decompress),
        ("compressed", ScanStrategy::Compressed),
        ("adaptive", ScanStrategy::Adaptive),
    ] {
        let t0 = Instant::now();
        let mut result = (0, Default::default());
        for _ in 0..5 {
            result = sum_where_gt(&col, 500, strategy).expect("scan succeeds");
        }
        let (sum, stats) = result;
        println!(
            "{:<14} {:>10.2} {:>12} {:>14} {:>12} {:>14}",
            name,
            t0.elapsed().as_secs_f64() * 1e3 / 5.0,
            stats.fast_path,
            stats.decompressed,
            stats.plans_cached,
            sum
        );
    }
    println!("\nAll sums agree; the adaptive scan pays one decompression per\nnewly-seen scheme, then runs each scheme's specialized plan (§III-C).");
}
