//! DSL text in, results out: compile a query with the
//! [`adaptvm::relational::workload::Workload`] bridge and run it under
//! every VM strategy, comparing wall time and verifying the outputs are
//! bit-identical across strategies.
//!
//! ```sh
//! cargo run --release --example dsl_query
//! ```

use std::collections::HashMap;
use std::time::Instant;

use adaptvm::parallel::MemoryBudget;
use adaptvm::relational::parallel::ParallelOpts;
use adaptvm::relational::workload::Workload;
use adaptvm::storage::{Array, ScalarType};
use adaptvm::vm::{Strategy, VmConfig};

const SRC: &str = "\
let base = read 0 xs in {
  let doubled = map (\\x y -> x * 2 + y) base (read 0 ys) in {
    write oi 0 (condense (filter (\\v -> v > 0) doubled))
    write of 0 (map (\\f -> f * 0.5 + 1.0) (read 0 fs))
    write oi 2000000 (fold sum 0 doubled)
  }
}
";

const SCHEMA: &[(&str, ScalarType)] = &[
    ("xs", ScalarType::I64),
    ("ys", ScalarType::I64),
    ("fs", ScalarType::F64),
    ("oi", ScalarType::I64),
    ("of", ScalarType::F64),
];

fn main() {
    let n = 2_000_000usize;
    let xs = Array::from((0..n as i64).map(|i| i % 997 - 498).collect::<Vec<_>>());
    let ys = Array::from(
        (0..n as i64)
            .map(|i| (i * 7) % 1_003 - 501)
            .collect::<Vec<_>>(),
    );
    let fs = Array::from(
        (0..n as i64)
            .map(|i| (i % 2_001 - 1_000) as f64 * 0.5)
            .collect::<Vec<_>>(),
    );
    let inputs: Vec<(&str, Array)> = vec![("xs", xs), ("ys", ys), ("fs", fs)];

    println!("query ({} input rows):\n{SRC}", n);
    let workload = Workload::compile(SRC, SCHEMA).expect("query must compile");

    let budget = MemoryBudget::bytes(64 << 20);
    let mut baseline: Option<HashMap<String, Array>> = None;
    println!("{:<18} {:>12} {:>14}", "strategy", "time", "oi rows");
    for strategy in [
        Strategy::Interpret,
        Strategy::CompiledPipeline,
        Strategy::Adaptive,
    ] {
        let config = VmConfig {
            strategy,
            ..VmConfig::default()
        };
        let opts = ParallelOpts {
            workers: 4,
            ..ParallelOpts::default()
        }
        .with_budget(&budget);
        let t0 = Instant::now();
        let (out, _report) = workload.run(&inputs, config, opts).expect("query must run");
        let elapsed = t0.elapsed();
        println!(
            "{:<18} {:>9.2} ms {:>14}",
            format!("{strategy:?}"),
            elapsed.as_secs_f64() * 1e3,
            out["oi"].len(),
        );
        match &baseline {
            None => baseline = Some(out),
            Some(b) => assert_eq!(b, &out, "strategies must agree bit-for-bit"),
        }
    }
    println!("all strategies agree bit-for-bit");
}
